/**
 * @file
 * Figure 6 reproduction: NVRAM writes attributable to the consistency
 * mechanism (log/journal/checkpoint), normalized to UNDO-LOG, for the
 * seven microbenchmarks.  Lower is better.
 */

#include "bench/bench_common.hh"

using namespace ssp;
using namespace ssp::bench;

int
main()
{
    setVerbose(false);
    SspConfig cfg = paperConfig(1);
    printHeader("Figure 6: logging writes normalized to UNDO-LOG "
                "(lower is better)",
                cfg);

    TextTable table({"workload", "UNDO-LOG", "REDO-LOG", "SSP",
                     "UNDO/SSP", "REDO/SSP"});
    double sum_undo_over_ssp = 0, sum_redo_over_ssp = 0;
    unsigned n = 0;
    for (WorkloadKind w : microbenchmarks()) {
        double writes[3] = {0, 0, 0};
        unsigned i = 0;
        for (BackendKind b : paperBackends()) {
            writes[i++] = static_cast<double>(
                runCell(b, w, cfg).loggingWrites);
        }
        const double base = writes[0];
        table.addRow(
            {workloadKindName(w), fmtDouble(writes[0] / base),
             fmtDouble(writes[1] / base), fmtDouble(writes[2] / base),
             writes[2] > 0 ? fmtDouble(writes[0] / writes[2], 1) : "inf",
             writes[2] > 0 ? fmtDouble(writes[1] / writes[2], 1) : "inf"});
        if (writes[2] > 0) {
            sum_undo_over_ssp += writes[0] / writes[2];
            sum_redo_over_ssp += writes[1] / writes[2];
            ++n;
        }
    }
    if (n > 0) {
        table.addRow({"average", "-", "-", "-",
                      fmtDouble(sum_undo_over_ssp / n, 1),
                      fmtDouble(sum_redo_over_ssp / n, 1)});
    }
    std::printf("%s\n", table.render().c_str());
    printPaperNote("SSP decreases logging write traffic by 7.6x vs "
                   "UNDO-LOG and 4.7x vs REDO-LOG on average; BTree-Rand "
                   "nearly eliminates logging writes");
    return 0;
}
