/**
 * @file
 * Parallel sweep CLI: reproduce any figure/table grid of the evaluation
 * in one invocation and emit the machine-readable BENCH_<figure>.json
 * perf report.
 *
 *   sweep_main --figure fig5 --backends ssp,undo,redo --jobs 8 \
 *              --json BENCH_fig5.json
 *
 * Per-cell results are bit-identical for any --jobs value: every cell
 * owns a deterministic RNG stream and a result slot keyed by its grid
 * position.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "sweep/sweep_runner.hh"

using namespace ssp;
using namespace ssp::sweep;

namespace
{

[[noreturn]] void
usage(int exit_code)
{
    std::fprintf(
        stderr,
        "usage: sweep_main --figure <name> [options]\n"
        "\n"
        "  --figure NAME      grid to run: fig5 fig6 fig7 fig8 fig9\n"
        "                     table3 table45 chan scale scale64\n"
        "                     scale256 queue shard fault smoke\n"
        "                     (required)\n"
        "  --backends LIST    comma-separated subset of ssp,undo,redo,\n"
        "                     shadow (default: the figure's own set)\n"
        "  --workloads LIST   comma-separated subset of Table 3 names\n"
        "                     (e.g. BTree-Rand,SPS; default: all)\n"
        "  --channels LIST    chan grid: NVRAM channel counts to sweep\n"
        "                     (e.g. 1,2,4,8; default: 1,2,4,8)\n"
        "  --cores LIST       scale/scale64/scale256/queue grids: core\n"
        "                     counts to sweep (default: 1,2,4,8 /\n"
        "                     1,2,4,8,16,32,64 / 1,4,16,64,128,256 /\n"
        "                     4,16; scale256 accepts up to 256, the\n"
        "                     other grids' machines cap at 64)\n"
        "  --machines LIST    shard/fault grids: cluster sizes to sweep\n"
        "                     (e.g. 1,2,4; default: 1,2,4,8 for shard,\n"
        "                     1,2,4 for fault)\n"
        "  --fault-rate LIST  fault grid: expected machine failures per\n"
        "                     million cycles per machine (e.g. 0,5,20;\n"
        "                     default: 0,5,20; 0 = armed but quiet)\n"
        "  --replicate MODE   fault grid: primary/backup replication —\n"
        "                     off, on, or both (default: both)\n"
        "  --load LIST        queue grid: offered loads as factors of\n"
        "                     measured closed-loop capacity (default:\n"
        "                     0.3,0.6,0.9,1.2)\n"
        "  --arrival KIND     queue grid: arrival process — poisson\n"
        "                     (default), bursty (MMPP-2) or diurnal\n"
        "  --conflict-mode M  concurrent-conflict handling: fcw\n"
        "                     (first-committer-wins, the default),\n"
        "                     lazy (read-set-only validation), off\n"
        "  --nvram-device D   NVRAM preset for every cell: paper-pcm,\n"
        "                     stt-mram, flash, dram-only (default:\n"
        "                     paper-pcm, the Table 2 device)\n"
        "  --jobs N           worker threads (default 1)\n"
        "  --cell-threads N   host threads per cell (default 1):\n"
        "                     N-1 ghost speculation threads prefetch\n"
        "                     ahead of each cell's simulation; results\n"
        "                     are bit-identical for any N.  Shares the\n"
        "                     host-thread budget with --jobs (workers\n"
        "                     are clamped so jobs*N fits the machine)\n"
        "  --txs N            transactions per cell (default: figure)\n"
        "  --seed N           base RNG seed (default 42)\n"
        "  --json PATH        output path (default BENCH_<figure>.json)\n"
        "  --time             emit host wall-clock times (host_ms per\n"
        "                     cell, host_ms_total per grid) into the\n"
        "                     JSON; off by default so checked-in\n"
        "                     reports stay byte-stable\n"
        "  --quiet            suppress per-cell progress lines\n"
        "  --list             print known figures and exit\n");
    std::exit(exit_code);
}

struct CliArgs
{
    std::string figure;
    SweepGridOptions grid;
    unsigned jobs = 1;
    unsigned cellThreads = 1;
    std::string jsonPath;
    bool time = false;
    bool quiet = false;
    bool arrivalSet = false; ///< --arrival was given explicitly
};

CliArgs
parseArgs(int argc, char **argv)
{
    CliArgs args;
    auto next_value = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            usage(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--figure") {
            args.figure = next_value(i);
        } else if (arg == "--backends") {
            for (const std::string &name : splitCommas(next_value(i)))
                args.grid.backends.push_back(parseBackendKind(name));
        } else if (arg == "--workloads") {
            for (const std::string &name : splitCommas(next_value(i)))
                args.grid.workloads.push_back(parseWorkloadKind(name));
        } else if (arg == "--channels" || arg == "--cores") {
            // parseCountList is fatal on an empty or invalid list: a
            // bad count sweep must fail loudly, never fall back to the
            // grid's default list and "succeed".  --cores parses up to
            // kMaxCores; the per-figure machine ceiling is checked by
            // buildFigureGrid once the figure is known.
            const bool cores = arg == "--cores";
            auto &list =
                cores ? args.grid.coreCounts : args.grid.channels;
            for (unsigned v : parseCountList(arg, next_value(i),
                                             cores ? kMaxCores : 64))
                list.push_back(v);
        } else if (arg == "--machines") {
            // parseCountList is fatal on an empty or invalid list, like
            // the count lists above.
            for (unsigned v : parseCountList(arg, next_value(i), 64))
                args.grid.machines.push_back(v);
        } else if (arg == "--fault-rate") {
            // parseFaultRateList is fatal on an empty or invalid list,
            // like the count lists above.
            for (double v : parseFaultRateList(arg, next_value(i)))
                args.grid.faultRates.push_back(v);
        } else if (arg == "--replicate") {
            args.grid.replicateModes =
                parseReplicateModes(next_value(i));
        } else if (arg == "--load") {
            // parseLoadList is fatal on an empty or invalid list, like
            // the count lists above.
            for (double v : parseLoadList(arg, next_value(i)))
                args.grid.loads.push_back(v);
        } else if (arg == "--arrival") {
            args.grid.arrival =
                ssp::serve::parseArrivalKind(next_value(i));
            args.arrivalSet = true;
        } else if (arg == "--conflict-mode") {
            args.grid.conflictMode = parseConflictMode(next_value(i));
        } else if (arg == "--nvram-device") {
            args.grid.nvramDevice = parseNvramDevice(next_value(i));
        } else if (arg == "--jobs") {
            args.jobs = static_cast<unsigned>(
                std::stoul(next_value(i)));
        } else if (arg == "--cell-threads") {
            // Fatal on anything outside [1, 64], like the count lists.
            args.cellThreads = parseCellThreads(next_value(i));
        } else if (arg == "--txs") {
            args.grid.txs = std::stoull(next_value(i));
        } else if (arg == "--seed") {
            args.grid.scale.seed = std::stoull(next_value(i));
        } else if (arg == "--json") {
            args.jsonPath = next_value(i);
        } else if (arg == "--time") {
            args.time = true;
        } else if (arg == "--quiet") {
            args.quiet = true;
        } else if (arg == "--list") {
            for (const std::string &name : knownFigures())
                std::printf("%s\n", name.c_str());
            std::exit(0);
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(2);
        }
    }
    if (args.figure.empty()) {
        std::fprintf(stderr, "--figure is required\n");
        usage(2);
    }
    if (!args.grid.channels.empty() && args.figure != "chan") {
        // Only the chan grid sweeps channel counts; erroring beats
        // silently emitting 1-channel results labeled as a channel run.
        std::fprintf(stderr,
                     "--channels only applies to '--figure chan', not "
                     "'%s'\n",
                     args.figure.c_str());
        usage(2);
    }
    if (!args.grid.coreCounts.empty() && args.figure != "scale" &&
        args.figure != "scale64" && args.figure != "scale256" &&
        args.figure != "queue") {
        std::fprintf(stderr,
                     "--cores only applies to '--figure scale', "
                     "'--figure scale64', '--figure scale256' or "
                     "'--figure queue', not '%s'\n",
                     args.figure.c_str());
        usage(2);
    }
    if (!args.grid.machines.empty() && args.figure != "shard" &&
        args.figure != "fault") {
        std::fprintf(stderr,
                     "--machines only applies to '--figure shard' or "
                     "'--figure fault', not '%s'\n",
                     args.figure.c_str());
        usage(2);
    }
    if ((!args.grid.faultRates.empty() ||
         !args.grid.replicateModes.empty()) &&
        args.figure != "fault") {
        // Only the fault grid arms the injector; erroring beats
        // silently emitting fault-free results labeled as a fault run.
        std::fprintf(stderr,
                     "--fault-rate/--replicate only apply to '--figure "
                     "fault', not '%s'\n",
                     args.figure.c_str());
        usage(2);
    }
    if ((!args.grid.loads.empty() || args.arrivalSet) &&
        args.figure != "queue") {
        std::fprintf(stderr,
                     "--load/--arrival only apply to '--figure queue', "
                     "not '%s'\n",
                     args.figure.c_str());
        usage(2);
    }
    if (args.jsonPath.empty())
        args.jsonPath = "BENCH_" + args.figure + ".json";
    return args;
}

} // namespace

int
main(int argc, char **argv)
try {
    setVerbose(false);
    CliArgs args = parseArgs(argc, argv);

    const std::vector<SweepCell> cells =
        buildFigureGrid(args.figure, args.grid);
    if (cells.empty()) {
        std::fprintf(stderr,
                     "figure '%s': no cells left after filtering\n",
                     args.figure.c_str());
        return 2;
    }
    std::string summary = "sweep " + args.figure + ": " +
                          std::to_string(cells.size()) + " cell(s), " +
                          std::to_string(args.jobs) + " job(s)";
    if (args.cellThreads > 1) {
        summary +=
            ", " + std::to_string(args.cellThreads) + " cell thread(s)";
    }
    std::printf("%s", banner(summary).c_str());

    CellCallback progress;
    if (!args.quiet) {
        progress = [](const CellResult &r, std::size_t done,
                      std::size_t total) {
            std::printf("[%zu/%zu] %-40s %s\n", done, total,
                        r.cell.label().c_str(),
                        r.ok ? "ok" : r.error.c_str());
            std::fflush(stdout);
        };
    }

    const std::vector<CellResult> results =
        runSweep(cells, args.jobs, progress, args.cellThreads);

    TextTable table({"cell", "tps", "nvram writes", "logging writes",
                     "avg lines/tx"});
    unsigned failures = 0;
    for (const CellResult &r : results) {
        if (!r.ok) {
            ++failures;
            table.addRow({r.cell.label(), "FAILED: " + r.error, "-", "-",
                          "-"});
            continue;
        }
        table.addRow({r.cell.label(), fmtDouble(r.run.tps(), 0),
                      std::to_string(r.run.nvramWrites),
                      std::to_string(r.run.loggingWrites),
                      fmtDouble(r.run.avgLinesPerTx, 1)});
    }
    std::printf("\n%s\n", table.render().c_str());

    const Json report = sweepReport(args.figure, results, args.time);
    std::ofstream out(args.jsonPath);
    if (!out) {
        std::fprintf(stderr, "cannot open '%s' for writing\n",
                     args.jsonPath.c_str());
        return 1;
    }
    out << report.dump(2) << '\n';
    out.close();
    if (!out) {
        std::fprintf(stderr, "write to '%s' failed\n",
                     args.jsonPath.c_str());
        return 1;
    }
    std::printf("wrote %s (%zu cells, %u failed)\n",
                args.jsonPath.c_str(), results.size(), failures);

    return failures == 0 ? 0 : 1;
} catch (const std::exception &e) {
    // ssp_fatal (bad figure/backend/workload names) throws; turn it
    // into a clean CLI error instead of std::terminate.
    std::fprintf(stderr, "sweep_main: %s\n", e.what());
    return 2;
}
