/**
 * @file
 * Ablation A3: the paper's section-4.3 / future-work extensions.
 *
 * (a) Sub-page granularity: 64-byte lines (base design, 64-bit bitmaps)
 *     vs 256-byte sub-pages (Optane's preferred persistence unit,
 *     16-bit bitmaps).  Coarser tracking shrinks TLB-entry state and
 *     flip traffic but amplifies copy-on-write and flush units.
 * (b) Consolidation policy: eager (the paper's implementation) vs lazy
 *     (defer until shadow-pool pressure; cancel when a page becomes
 *     active again).
 */

#include "bench/bench_common.hh"
#include "core/ssp_system.hh"

using namespace ssp;
using namespace ssp::bench;

int
main()
{
    setVerbose(false);
    SspConfig base = paperConfig(1);
    printHeader("Ablation A3: SSP extensions (sub-page granularity, "
                "lazy consolidation)",
                base);

    std::printf("(a) tracking granularity\n");
    TextTable ga({"workload", "64B TPS(K)", "256B TPS(K)",
                  "64B writes/tx", "256B writes/tx", "64B flips/tx",
                  "256B flips/tx"});
    for (WorkloadKind w :
         {WorkloadKind::BTreeRand, WorkloadKind::RbTreeRand,
          WorkloadKind::Sps}) {
        SspConfig fine = paperConfig(1);
        SspConfig coarse = paperConfig(1);
        coarse.subPageLines = 4;

        auto fine_exp = buildExperiment(BackendKind::Ssp, w, fine,
                                        paperScale());
        auto *fine_sys =
            dynamic_cast<SspSystem *>(fine_exp.backend.get());
        const std::uint64_t fine_flips0 =
            fine_sys->machine().coherence().flipMessages();
        RunResult fr = runExperiment(fine_exp, kMeasuredTxs, 1);
        const double fine_flips =
            static_cast<double>(
                fine_sys->machine().coherence().flipMessages() -
                fine_flips0) /
            static_cast<double>(fr.committedTxs);

        auto coarse_exp = buildExperiment(BackendKind::Ssp, w, coarse,
                                          paperScale());
        auto *coarse_sys =
            dynamic_cast<SspSystem *>(coarse_exp.backend.get());
        const std::uint64_t coarse_flips0 =
            coarse_sys->machine().coherence().flipMessages();
        RunResult cr = runExperiment(coarse_exp, kMeasuredTxs, 1);
        const double coarse_flips =
            static_cast<double>(
                coarse_sys->machine().coherence().flipMessages() -
                coarse_flips0) /
            static_cast<double>(cr.committedTxs);

        ga.addRow({workloadKindName(w), fmtDouble(fr.tps() / 1000.0, 1),
                   fmtDouble(cr.tps() / 1000.0, 1),
                   fmtDouble(fr.writesPerTx(), 1),
                   fmtDouble(cr.writesPerTx(), 1),
                   fmtDouble(fine_flips, 1), fmtDouble(coarse_flips, 1)});
    }
    std::printf("%s\n", ga.render().c_str());

    std::printf("(b) consolidation policy (consolidation writes per tx; "
                "lower is better)\n");
    TextTable gb({"workload", "eager", "lazy", "lazy cancellations/tx"});
    for (WorkloadKind w :
         {WorkloadKind::RbTreeRand, WorkloadKind::RbTreeZipf,
          WorkloadKind::HashRand, WorkloadKind::HashZipf}) {
        SspConfig eager = paperConfig(1);
        SspConfig lazy = paperConfig(1);
        lazy.consolidationPolicy = SspConfig::ConsolidationPolicy::Lazy;
        lazy.lazyLowWatermark = 64;

        auto eager_exp =
            buildExperiment(BackendKind::Ssp, w, eager, paperScale());
        RunResult er = runExperiment(eager_exp, kMeasuredTxs, 1);

        auto lazy_exp =
            buildExperiment(BackendKind::Ssp, w, lazy, paperScale());
        auto *lazy_sys = dynamic_cast<SspSystem *>(lazy_exp.backend.get());
        RunResult lr = runExperiment(lazy_exp, kMeasuredTxs, 1);
        const double cancels =
            static_cast<double>(
                lazy_sys->controller().canceledConsolidations()) /
            static_cast<double>(lr.committedTxs);

        gb.addRow(
            {workloadKindName(w),
             fmtDouble(static_cast<double>(er.consolidationWrites) /
                           static_cast<double>(er.committedTxs),
                       2),
             fmtDouble(static_cast<double>(lr.consolidationWrites) /
                           static_cast<double>(lr.committedTxs),
                       2),
             fmtDouble(cancels, 2)});
    }
    std::printf("%s\n", gb.render().c_str());
    printPaperNote("section 4.3 argues 256B sub-pages cut the TLB state "
                   "4x; section 3.4 leaves lazy consolidation as future "
                   "work — cancellation on re-activation is where it "
                   "wins");
    return 0;
}
