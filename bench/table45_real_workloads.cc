/**
 * @file
 * Tables 4 and 5 reproduction: the real workloads (Memcached with a
 * memslap-like 90%-SET generator and the Vacation OLTP emulation, four
 * clients each) — SSP's throughput improvement over UNDO-LOG/REDO-LOG
 * (Table 4) and its NVRAM write-traffic savings (Table 5).
 */

#include "bench/bench_common.hh"

using namespace ssp;
using namespace ssp::bench;

int
main()
{
    setVerbose(false);
    // "Four clients" in the paper: run on four cores.
    SspConfig cfg = paperConfig(4);
    printHeader("Tables 4 & 5: real workloads (4 clients)", cfg);

    TextTable table4({"workload", "speedup vs UNDO-LOG",
                      "speedup vs REDO-LOG", "paper (undo/redo)"});
    TextTable table5({"workload", "write saving vs UNDO-LOG",
                      "write saving vs REDO-LOG", "paper (undo/redo)"});
    const char *paper4[] = {"75% / 35%", "27% / 13%"};
    const char *paper5[] = {"49% / 46%", "38% / 17%"};

    unsigned i = 0;
    for (WorkloadKind w : realWorkloads()) {
        double tps[3] = {0, 0, 0};
        double writes[3] = {0, 0, 0};
        unsigned j = 0;
        for (BackendKind b : paperBackends()) {
            RunResult res = runCell(b, w, cfg, kMeasuredTxs, 4);
            tps[j] = res.tps();
            writes[j] = static_cast<double>(res.nvramWrites);
            ++j;
        }
        table4.addRow(
            {workloadKindName(w),
             fmtDouble((tps[2] / tps[0] - 1.0) * 100, 0) + "%",
             fmtDouble((tps[2] / tps[1] - 1.0) * 100, 0) + "%",
             paper4[i]});
        table5.addRow(
            {workloadKindName(w),
             fmtDouble((1.0 - writes[2] / writes[0]) * 100, 0) + "%",
             fmtDouble((1.0 - writes[2] / writes[1]) * 100, 0) + "%",
             paper5[i]});
        ++i;
    }
    std::printf("Table 4: throughput improvement of SSP\n%s\n",
                table4.render().c_str());
    std::printf("Table 5: NVRAM write-traffic saving of SSP\n%s\n",
                table5.render().c_str());
    printPaperNote("SSP saves 86%/82% of logging writes vs UNDO/REDO on "
                   "the real workloads; Vacation gains less because "
                   "volatile execution dominates its runtime");
    return 0;
}
